// Multi-tenant hardening tests: admission control (429 + Retry-After),
// priority classes, tenant rate/quota enforcement, the tiered L1/L2
// result cache across daemons, and the singleflight and fan-out
// bugfixes that rode along.
package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gpu"
	"repro/internal/jobs"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// slowJobSched is slowJob with a chosen scheduler, so tests can mint
// several slow jobs with distinct cache identities.
func slowJobSched(t *testing.T, sched string) jobs.Job {
	t.Helper()
	j := slowJob(t)
	j.Scheduler = sched
	return j
}

// quickJob is one fast job (well under a second even under the race
// detector).
func quickJob(t *testing.T, sched string) jobs.Job {
	t.Helper()
	w, err := workloads.ByKernel("aesEncrypt128")
	if err != nil {
		t.Fatal(err)
	}
	js := jobs.Grid([]*workloads.Workload{w}, []string{sched}, 8, gpu.Options{})
	if len(js) != 1 {
		t.Fatalf("grid of one kernel and one scheduler built %d jobs", len(js))
	}
	return js[0]
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// batchBody marshals jobs into a BatchRequest body with a batch-level
// priority.
func batchBody(t *testing.T, js []jobs.Job, priority string) []byte {
	t.Helper()
	req := BatchRequest{Jobs: make([]WireJob, len(js)), Priority: priority}
	for i := range js {
		wj, err := FromJob(&js[i])
		if err != nil {
			t.Fatal(err)
		}
		req.Jobs[i] = wj
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestLeaderDisconnectDuringSlotWaitDoesNotPoisonFollowers is the
// regression test for the context-poisoning bug: a leader that
// registered a flight but was still waiting for a worker slot used to
// wait on its own request context, so its client disconnecting
// resolved the shared flight with context.Canceled and every attached
// follower received the leader's error instead of a result.
func TestLeaderDisconnectDuringSlotWaitDoesNotPoisonFollowers(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 1})

	// Occupy the only worker slot so the leader has to queue.
	blocker := slowJobSched(t, "GTO")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		d.runJob(context.Background(), &blocker, classInteractive)
	}()
	waitFor(t, "blocker to hold the slot", func() bool { return d.running.Load() == 1 })

	shared := slowJobSched(t, "PRO")
	key, ok, err := d.eng.Key(&shared)
	if err != nil || !ok {
		t.Fatalf("shared job has no stable key: ok=%v err=%v", ok, err)
	}
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, _, err := d.runJob(leaderCtx, &shared, classInteractive)
		leaderErr <- err
	}()
	waitFor(t, "leader to register its flight", func() bool {
		d.mu.Lock()
		defer d.mu.Unlock()
		return d.inflight[key] != nil
	})

	var followerRes *stats.KernelResult
	followerErr := make(chan error, 1)
	go func() {
		r, _, _, err := d.runJob(context.Background(), &shared, classInteractive)
		followerRes = r
		followerErr <- err
	}()
	waitFor(t, "follower to attach", func() bool { return d.attached.Load() == 1 })

	// The leader's client walks away while the leader still queues for
	// a slot. The flight must run to completion regardless.
	cancelLeader()
	if err := <-followerErr; err != nil {
		t.Fatalf("leader's disconnect poisoned the attached follower: %v", err)
	}
	if followerRes == nil {
		t.Fatal("follower completed without a result")
	}
	if err := <-leaderErr; err != nil {
		// The leader itself also finishes: its run was already communal.
		t.Fatalf("leader errored despite running under the daemon context: %v", err)
	}
	wg.Wait()
}

// TestFullQueueFastFailsWith429: once a class's pending queue is full,
// further batches are rejected immediately with 429 and a Retry-After
// hint instead of being absorbed without bound.
func TestFullQueueFastFailsWith429(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 1, QueueDepth: 2})

	var wg sync.WaitGroup
	for _, s := range []string{"PRO", "GTO", "LRR"} {
		j := slowJobSched(t, s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.Run(context.Background(), []jobs.Job{j})
		}()
	}
	// One job running, two queued: the interactive queue is exactly full.
	waitFor(t, "queue to fill", func() bool {
		qi, _ := d.disp.depths()
		return d.running.Load() == 1 && qi == 2
	})

	body := batchBody(t, []jobs.Job{slowJobSched(t, "TL")}, "")
	resp, err := http.Post(c.base+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("batch against a full queue: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response carries no Retry-After header")
	}
	if d.rejected.Load() == 0 {
		t.Fatal("rejection not counted")
	}
	wg.Wait()
}

// TestOversizeBatchRejectedWith413: the per-request job cap fails fast
// before any conversion or admission work.
func TestOversizeBatchRejectedWith413(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1, MaxBatchJobs: 2})
	js := []jobs.Job{quickJob(t, "LRR"), quickJob(t, "GTO"), quickJob(t, "TL")}
	resp, err := http.Post(c.base+"/v1/batch", "application/json", bytes.NewReader(batchBody(t, js, "")))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("3-job batch against a 2-job cap: status %d, want 413", resp.StatusCode)
	}
}

// TestBulkFloodDoesNotStarveInteractive: with one worker slot fully
// saturated by a bulk batch, a later interactive batch must still
// complete (without any 5xx) while bulk work remains queued — the
// weighted dispatcher grants the freed slot to the interactive class
// first.
func TestBulkFloodDoesNotStarveInteractive(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 1})

	bulkC := NewClient(c.Addr())
	bulkC.Priority = PriorityBulk
	bulkJobs := []jobs.Job{
		slowJobSched(t, "PRO"), slowJobSched(t, "GTO"),
		slowJobSched(t, "LRR"), slowJobSched(t, "TL"),
	}
	var bulkFinished atomic.Bool
	bulkErr := make(chan error, 1)
	go func() {
		_, err := bulkC.Run(context.Background(), bulkJobs)
		bulkFinished.Store(true)
		bulkErr <- err
	}()
	waitFor(t, "bulk flood to saturate the daemon", func() bool {
		_, qb := d.disp.depths()
		return d.running.Load() == 1 && qb == len(bulkJobs)-1
	})

	ic := NewClient(c.Addr()) // empty Priority = interactive
	rs, err := ic.Run(context.Background(), []jobs.Job{quickJob(t, "PRO")})
	if err != nil {
		t.Fatalf("interactive batch failed under bulk saturation: %v", err)
	}
	if len(rs) != 1 || rs[0] == nil {
		t.Fatalf("interactive batch returned %d results", len(rs))
	}
	if bulkFinished.Load() {
		t.Fatal("bulk flood drained before the interactive batch returned — the test exerted no contention")
	}
	if _, qb := d.disp.depths(); qb == 0 {
		t.Fatal("no bulk work left queued when the interactive batch completed — priority was not exercised")
	}
	if err := <-bulkErr; err != nil {
		t.Fatalf("bulk batch failed: %v", err)
	}
}

// TestTenantQuotaAndUnknownToken: unknown tokens are 401 (and not
// retryable), quota overruns are 429 OverloadedError, and untokened
// requests still land on the default tenant.
func TestTenantQuotaAndUnknownToken(t *testing.T) {
	_, c := newTestDaemon(t, Config{
		Workers: 2,
		Tenants: []TenantConfig{{Token: "sekret", Name: "ci", MaxInFlight: 1}},
	})

	bad := NewClient(c.Addr())
	bad.Token = "wrong"
	_, err := bad.Run(context.Background(), []jobs.Job{quickJob(t, "LRR")})
	if err == nil {
		t.Fatal("unknown token accepted")
	}
	var oe *OverloadedError
	if errors.As(err, &oe) {
		t.Fatalf("auth failure surfaced as retryable overload: %v", err)
	}
	if !strings.Contains(err.Error(), "401") {
		t.Fatalf("unknown token error does not carry 401: %v", err)
	}

	ci := NewClient(c.Addr())
	ci.Token = "sekret"
	_, err = ci.Run(context.Background(), []jobs.Job{quickJob(t, "LRR"), quickJob(t, "GTO")})
	if !errors.As(err, &oe) {
		t.Fatalf("2-job batch against a 1-job quota: %v, want OverloadedError", err)
	}
	if oe.Status != http.StatusTooManyRequests || oe.RetryAfter <= 0 {
		t.Fatalf("quota overload: status=%d retryAfter=%s", oe.Status, oe.RetryAfter)
	}

	if _, err := ci.Run(context.Background(), []jobs.Job{quickJob(t, "LRR")}); err != nil {
		t.Fatalf("within-quota batch failed: %v", err)
	}
	if _, err := c.Run(context.Background(), []jobs.Job{quickJob(t, "TL")}); err != nil {
		t.Fatalf("untokened batch against the default tenant failed: %v", err)
	}
}

// TestTenantRateLimit: a tenant's token bucket refuses the batch that
// overdraws it, with a Retry-After derived from the refill rate.
func TestTenantRateLimit(t *testing.T) {
	_, c := newTestDaemon(t, Config{
		Workers: 2,
		Tenants: []TenantConfig{{Token: "slow", Name: "drip", RatePerSec: 0.1, Burst: 1}},
	})
	drip := NewClient(c.Addr())
	drip.Token = "slow"
	if _, err := drip.Run(context.Background(), []jobs.Job{quickJob(t, "LRR")}); err != nil {
		t.Fatalf("burst-sized batch refused: %v", err)
	}
	_, err := drip.Run(context.Background(), []jobs.Job{quickJob(t, "GTO")})
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("over-rate batch: %v, want OverloadedError", err)
	}
	if oe.RetryAfter < time.Second {
		t.Fatalf("rate overload Retry-After %s, want >= 1s", oe.RetryAfter)
	}
}

// TestLargeBatchBoundedGoroutines is the fan-out regression test: a
// batch used to spawn one goroutine per job, so a 500-job batch meant
// 500 concurrent stacks. The bounded submission pool must keep the
// process's goroutine count flat while still finishing the batch (and,
// with a cache, still simulating the deduped job exactly once).
func TestLargeBatchBoundedGoroutines(t *testing.T) {
	const n = 500
	d, c := newTestDaemon(t, Config{Workers: 4, CacheDir: t.TempDir(), QueueDepth: 2 * n})
	js := make([]jobs.Job, n)
	for i := range js {
		js[i] = quickJob(t, "PRO")
	}

	done := make(chan error, 1)
	go func() {
		rs, err := c.Run(context.Background(), js)
		if err == nil && len(rs) != n {
			err = fmt.Errorf("got %d results for %d jobs", len(rs), n)
		}
		done <- err
	}()
	peak := 0
	for {
		if g := runtime.NumGoroutine(); g > peak {
			peak = g
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			if peak > 300 {
				t.Fatalf("peak goroutine count %d during a %d-job batch — fan-out is unbounded again", peak, n)
			}
			if got := d.Engine().Simulated(); got != 1 {
				t.Fatalf("identical cached jobs simulated %d times, want 1", got)
			}
			return
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// TestTwoDaemonsSharedL2SimulateOnce is the tentpole's end-to-end
// acceptance: daemon A serves its disk cache as an HTTP store, daemon
// B tiers onto it, and an identical job submitted to both simulates
// exactly once across the pair — B replays A's result through the L2,
// byte-identically.
func TestTwoDaemonsSharedL2SimulateOnce(t *testing.T) {
	dA, cA := newTestDaemon(t, Config{Workers: 2, CacheDir: t.TempDir(), ServeCache: true})
	dB, cB := newTestDaemon(t, Config{
		Workers:            2,
		CacheDir:           t.TempDir(),
		CacheRemote:        cA.Addr() + "/cache",
		CacheRemoteTimeout: 10 * time.Second, // CI latency must not degrade the tier
	})

	j := quickJob(t, "PRO")
	rsA, err := cA.Run(context.Background(), []jobs.Job{j})
	if err != nil {
		t.Fatal(err)
	}
	rsB, err := cB.Run(context.Background(), []jobs.Job{j})
	if err != nil {
		t.Fatal(err)
	}

	if got := dA.Engine().Simulated() + dB.Engine().Simulated(); got != 1 {
		t.Fatalf("two daemons sharing an L2 simulated %d times, want exactly 1", got)
	}
	if got := dB.Engine().Replayed(); got != 1 {
		t.Fatalf("daemon B replayed %d jobs, want 1 (the L2 read-through)", got)
	}
	a, _ := json.Marshal(rsA[0])
	b, _ := json.Marshal(rsB[0])
	if !bytes.Equal(a, b) {
		t.Fatal("L2-replayed result differs from the original")
	}
	if got := dB.tiered.L2Hits(); got != 1 {
		t.Fatalf("daemon B counted %d L2 hits, want 1", got)
	}
	// The promotion landed: B can now serve the entry without A.
	if _, ok := dB.Engine().Cache.Get(mustKey(t, dB, &j)); !ok {
		t.Fatal("L2 hit was not promoted into B's L1")
	}
	// And the stats endpoint advertises the tier.
	st, err := cB.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheRemote == "" || st.L2Hits != 1 {
		t.Fatalf("stats hide the L2 tier: remote=%q l2Hits=%d", st.CacheRemote, st.L2Hits)
	}
}

func mustKey(t *testing.T, d *Daemon, j *jobs.Job) string {
	t.Helper()
	key, ok, err := d.eng.Key(j)
	if err != nil || !ok {
		t.Fatalf("job has no stable key: ok=%v err=%v", ok, err)
	}
	return key
}

// TestStatsAndHealthRejectWrites: the read-only endpoints must refuse
// non-GET methods instead of silently executing them.
func TestStatsAndHealthRejectWrites(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1})
	for _, path := range []string{"/v1/stats", "/v1/health"} {
		resp, err := http.Post(c.base+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s: status %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestListenRefusesLiveSocketReclaimsStale is the socket-takeover
// regression test: Listen used to os.Remove the socket path
// unconditionally, silently unbinding a live daemon. Now a live socket
// is an error and only a dead path is reclaimed.
func TestListenRefusesLiveSocketReclaimsStale(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.sock")
	l, err := Listen("unix:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Listen("unix:" + path); err == nil {
		t.Fatal("second Listen took over a live daemon's socket")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("live-socket error does not say so: %v", err)
	}
	l.Close()

	// A stale leftover (no listener behind it) is reclaimed.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Listen("unix:" + path)
	if err != nil {
		t.Fatalf("Listen did not reclaim a stale socket path: %v", err)
	}
	l2.Close()
}

// TestClientSurfacesOverloadAsTypedError: 429/503 responses become
// OverloadedError with the server's Retry-After — never a
// TransportError, which would make a coordinator mark a healthy,
// load-shedding worker as lost.
func TestClientSurfacesOverloadAsTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "interactive queue is full", http.StatusTooManyRequests)
	}))
	t.Cleanup(srv.Close)
	c := NewClient(srv.URL)
	_, err := c.Run(context.Background(), []jobs.Job{quickJob(t, "LRR")})
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("429 did not surface as OverloadedError: %v", err)
	}
	if oe.Status != http.StatusTooManyRequests || oe.RetryAfter != 7*time.Second {
		t.Fatalf("overload mis-parsed: status=%d retryAfter=%s", oe.Status, oe.RetryAfter)
	}
	var te *TransportError
	if errors.As(err, &te) {
		t.Fatal("overload also matches TransportError — the coordinator would mark the worker lost")
	}
}

// TestDispatcherWeightedFairness exercises the dispatcher directly:
// with both classes saturated, grants follow the configured
// interactive:bulk ratio, and abandoned waiters are skipped.
func TestDispatcherWeightedFairness(t *testing.T) {
	disp := newTestDispatcherSaturated(t, 2)
	var order []class
	var mu sync.Mutex
	var wg sync.WaitGroup
	enqueue := func(cl class, k int) {
		for i := 0; i < k; i++ {
			disp.admit(cl, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := disp.acquire(context.Background(), context.Background(), cl); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				order = append(order, cl)
				mu.Unlock()
				disp.release()
			}()
		}
	}
	enqueue(classBulk, 4)
	waitFor(t, "bulk waiters to park", func() bool {
		disp.mu.Lock()
		defer disp.mu.Unlock()
		return len(disp.waiters[classBulk]) == 4
	})
	enqueue(classInteractive, 4)
	waitFor(t, "interactive waiters to park", func() bool {
		disp.mu.Lock()
		defer disp.mu.Unlock()
		return len(disp.waiters[classInteractive]) == 4
	})

	disp.release() // hand back the one held slot; grants cascade
	wg.Wait()
	// Weight 2: the first three grants must be interactive, interactive,
	// bulk — bulk is delayed but never starved.
	if len(order) != 8 {
		t.Fatalf("served %d waiters, want 8", len(order))
	}
	want := []class{classInteractive, classInteractive, classBulk}
	for i, cl := range want {
		if order[i] != cl {
			t.Fatalf("grant order %v, want prefix %v", order, want)
		}
	}
}

// newTestDispatcherSaturated builds a 1-slot dispatcher with the slot
// already taken, so every subsequent acquire parks.
func newTestDispatcherSaturated(t *testing.T, weight int) *dispatcher {
	t.Helper()
	disp := newDispatcher(1, 64, weight)
	if err := disp.acquire(context.Background(), context.Background(), classInteractive); err != nil {
		t.Fatal(err)
	}
	return disp
}

// TestStatsWireCompatMultiTenantFields extends the additive-fields
// contract to the multi-tenant generation: modern payloads decode
// fully, legacy payloads leave every new field zero.
func TestStatsWireCompatMultiTenantFields(t *testing.T) {
	modern := `{"completed":1,"workers":2,"queueInteractive":3,"queueBulk":4,
		"rejected":5,"tenants":2,"cacheRemote":"http://peer:9753/cache",
		"l2Hits":6,"l2Misses":7,"l2Degraded":8}`
	var st Stats
	if err := json.Unmarshal([]byte(modern), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueInteractive != 3 || st.QueueBulk != 4 || st.Rejected != 5 ||
		st.Tenants != 2 || st.CacheRemote == "" || st.L2Hits != 6 ||
		st.L2Misses != 7 || st.L2Degraded != 8 {
		t.Fatalf("modern stats payload mangled: %+v", st)
	}

	legacy := `{"completed":7,"simulated":3,"workers":4}`
	st = Stats{}
	if err := json.Unmarshal([]byte(legacy), &st); err != nil {
		t.Fatal(err)
	}
	if st.QueueInteractive != 0 || st.QueueBulk != 0 || st.Rejected != 0 ||
		st.Tenants != 0 || st.CacheRemote != "" || st.L2Hits != 0 {
		t.Fatalf("legacy stats payload fabricated tenant fields: %+v", st)
	}

	var h Health
	if err := json.Unmarshal([]byte(`{"status":"ok","workers":1,"queueDepth":9}`), &h); err != nil {
		t.Fatal(err)
	}
	if h.QueueDepth != 9 {
		t.Fatalf("health queueDepth mangled: %+v", h)
	}
	h = Health{}
	if err := json.Unmarshal([]byte(`{"status":"ok","workers":1}`), &h); err != nil {
		t.Fatal(err)
	}
	if h.QueueDepth != 0 {
		t.Fatalf("legacy health payload fabricated queueDepth: %+v", h)
	}

	// A priority-less batch request (old client) decodes to the empty
	// string, which parses as interactive — the legacy behaviour.
	var br BatchRequest
	if err := json.Unmarshal([]byte(`{"jobs":[]}`), &br); err != nil {
		t.Fatal(err)
	}
	if cl, err := parseClass(br.Priority); err != nil || cl != classInteractive {
		t.Fatalf("legacy batch priority parsed as %v (%v), want interactive", cl, err)
	}
}
