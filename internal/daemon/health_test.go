package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
)

func TestHealthEndpoint(t *testing.T) {
	d, c := newTestDaemon(t, Config{Workers: 3})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("fresh daemon reports status=%q draining=%v", h.Status, h.Draining)
	}
	if h.Workers != 3 {
		t.Fatalf("health reports %d workers, want 3", h.Workers)
	}
	if h.UptimeSec < 0 {
		t.Fatalf("negative uptime %v", h.UptimeSec)
	}

	// Once a shutdown begins the probe flips to draining so pollers
	// stop routing work here.
	if err := d.Shutdown(); err != nil {
		t.Fatal(err)
	}
	h, err = c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("post-shutdown probe reports status=%q draining=%v", h.Status, h.Draining)
	}
}

// TestHealthFallsBackToStats: a pre-health daemon answers 404 on
// /v1/health; the client must synthesize the probe from /v1/stats.
func TestHealthFallsBackToStats(t *testing.T) {
	d, _ := newTestDaemon(t, Config{Workers: 2})
	inner := d.Handler()
	old := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/health") {
			http.NotFound(w, r)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(old.Close)

	c := NewClient(old.URL)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("stats fallback reports status=%q draining=%v", h.Status, h.Draining)
	}
	if h.Workers != 2 {
		t.Fatalf("stats fallback reports %d workers, want 2", h.Workers)
	}
}

// TestStatsWireCompat: payloads from daemons that predate the draining
// field must decode with it zero — additive fields never break old
// pairings in either direction.
func TestStatsWireCompat(t *testing.T) {
	legacy := `{"completed":7,"simulated":3,"replayed":4,"cacheHits":2,
		"cacheMisses":1,"cacheWrites":1,"inFlight":0,"uptimeSec":12.5,"workers":4}`
	var st Stats
	if err := json.Unmarshal([]byte(legacy), &st); err != nil {
		t.Fatal(err)
	}
	if st.Draining {
		t.Fatal("legacy payload without draining decoded as draining")
	}
	if st.Completed != 7 || st.Workers != 4 {
		t.Fatalf("legacy fields mangled: %+v", st)
	}

	// And the new payload must still carry every legacy field under its
	// old name, so old clients keep working against new daemons.
	_, c := newTestDaemon(t, Config{Workers: 2})
	resp, err := http.Get(c.base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"completed", "simulated", "replayed", "inFlight", "uptimeSec", "workers"} {
		if _, ok := raw[field]; !ok {
			t.Errorf("stats payload lost legacy field %q", field)
		}
	}
}

// TestRunWrapsMidStreamDisconnect: a worker dying mid-batch must
// surface as a TransportError naming the worker and the unresolved
// jobs, not as a bare decode error — the coordinator's retry logic
// keys off that type.
func TestRunWrapsMidStreamDisconnect(t *testing.T) {
	d, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(d.Handler())
	t.Cleanup(srv.Close)
	c, err := Dial(srv.URL)
	if err != nil {
		t.Fatal(err)
	}

	j := slowJob(t)
	errc := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), []jobs.Job{j})
		errc <- err
	}()
	// Let the submit land and the stream open, then sever every
	// connection while the job still runs.
	time.Sleep(100 * time.Millisecond)
	srv.CloseClientConnections()

	err = <-errc
	if err == nil {
		t.Fatal("mid-stream disconnect returned no error")
	}
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("mid-stream disconnect not a TransportError: %v", err)
	}
	if te.Addr != srv.URL {
		t.Fatalf("TransportError names worker %q, want %q", te.Addr, srv.URL)
	}
	if len(te.Pending) != 1 {
		t.Fatalf("TransportError names %d pending jobs, want 1: %v", len(te.Pending), te.Pending)
	}
	if !strings.Contains(err.Error(), srv.URL) {
		t.Fatalf("error text %q does not name the worker", err)
	}
}

// TestRunKeepsJobErrorsBare: a job that ran and failed is a
// deterministic failure, not a transport loss — it must NOT come back
// as a TransportError or a retrying coordinator would replay it
// forever.
func TestRunKeepsJobErrorsBare(t *testing.T) {
	_, c := newTestDaemon(t, Config{Workers: 1})
	bad := jobs.Job{Kernel: "noSuchKernel", Scheduler: "PRO"}
	_, err := c.Run(context.Background(), []jobs.Job{bad})
	if err == nil {
		t.Fatal("unknown kernel ran successfully")
	}
	var te *TransportError
	if errors.As(err, &te) {
		t.Fatalf("deterministic job failure wrapped as TransportError: %v", err)
	}
}
