package sched

import (
	"sort"

	"repro/internal/engine"
	"repro/internal/isa"
)

// This file implements simplified versions of two schedulers from the
// paper's related-work section (Sec. V), useful as additional comparison
// points:
//
//   - CAWS (Lee & Wu, PACT-2014) prioritizes *critical* warps to reduce
//     the execution-time disparity among warps of the same thread block.
//     CAWSLite approximates warp criticality by least progress: the warp
//     that has executed the fewest thread-instructions is assumed to
//     have the most work left and is scheduled first.
//
//   - OWL (Jog et al., ASPLOS-2013) makes the scheduler CTA-aware: a
//     small group of CTAs gets persistent priority so its working set
//     stays cache-resident, instead of round-robining over all CTAs.
//     OWLLite orders thread blocks by assignment age (oldest group
//     first) and round-robins inside the prioritized group.
//
// Both are deliberately reduced to their scheduling essence — the cache
// -bypass and prefetch machinery of the originals is out of scope — and
// are labeled "-lite" in results.

// CAWSLite is the criticality-aware policy.
type CAWSLite struct {
	engine.BasePolicy
	sm *engine.SM
}

// NewCAWSLite is an engine.Factory.
func NewCAWSLite(sm *engine.SM) engine.Scheduler { return &CAWSLite{sm: sm} }

// Name implements engine.Scheduler.
func (s *CAWSLite) Name() string { return "CAWS-lite" }

// Order implements engine.Scheduler: warps by ascending progress (the
// least-progressed warp is the critical one), ties by slot for
// determinism.
func (s *CAWSLite) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	dst = s.sm.ScanLive(slot, 0, dst)
	sort.SliceStable(dst, func(i, j int) bool {
		if dst[i].Progress != dst[j].Progress {
			return dst[i].Progress < dst[j].Progress
		}
		return dst[i].Slot < dst[j].Slot
	})
	return dst
}

// OWLLite is the CTA-prioritizing policy.
type OWLLite struct {
	engine.BasePolicy
	sm *engine.SM
	// groupSize is how many TBs share top priority.
	groupSize int
	last      []int // per slot: warp slot of last issue (intra-group RR)
}

// DefaultOWLGroup is the prioritized-CTA group size.
const DefaultOWLGroup = 2

// NewOWLLite is an engine.Factory with the default group size.
func NewOWLLite(sm *engine.SM) engine.Scheduler {
	return &OWLLite{sm: sm, groupSize: DefaultOWLGroup, last: make([]int, sm.Cfg.SchedulersPerSM)}
}

// Name implements engine.Scheduler.
func (s *OWLLite) Name() string { return "OWL-lite" }

// Order implements engine.Scheduler: TBs sorted by assignment age; the
// oldest groupSize TBs form the priority group, scheduled round-robin;
// remaining TBs follow in age order. Always-prioritizing the same CTAs
// concentrates cache reuse (OWL's goal) and, as a side effect, finishes
// them sooner.
func (s *OWLLite) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	tbs := make([]*engine.ThreadBlock, 0, len(s.sm.TBSlots))
	for _, tb := range s.sm.TBSlots {
		if tb != nil {
			tbs = append(tbs, tb)
		}
	}
	sort.SliceStable(tbs, func(i, j int) bool { return tbs[i].LaunchSeq < tbs[j].LaunchSeq })

	appendTB := func(tb *engine.ThreadBlock, rotate bool) {
		warps := make([]*engine.Warp, 0, len(tb.Warps))
		for _, w := range tb.Warps {
			if w.SchedSlot == slot && !w.Finished() {
				warps = append(warps, w)
			}
		}
		if rotate && len(warps) > 1 {
			// Round-robin within the priority group: start after the
			// last-issued warp slot.
			start := 0
			for i, w := range warps {
				if w.Slot > s.last[slot] {
					start = i
					break
				}
			}
			warps = append(warps[start:], warps[:start]...)
		}
		dst = append(dst, warps...)
	}
	for i, tb := range tbs {
		appendTB(tb, i < s.groupSize)
	}
	return dst
}

// OnIssue implements engine.Scheduler.
func (s *OWLLite) OnIssue(w *engine.Warp, _ *isa.Instr, _ int, _ int64) {
	s.last[w.SchedSlot] = w.Slot
}
