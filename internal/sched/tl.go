package sched

import (
	"repro/internal/engine"
	"repro/internal/isa"
)

// DefaultActiveSet is the per-slot active-set size of the two-level
// scheduler, matching GPGPU-Sim 3.2.2's two_level_active default of six
// warps per scheduler unit.
const DefaultActiveSet = 6

// TL is the Two-Level warp scheduler (Narasiman et al., MICRO-2011) as
// realized by GPGPU-Sim's two_level_active scheduler: each scheduler slot
// keeps a small active set scheduled round-robin; a warp that issues a
// long-latency (global memory) instruction, blocks at a barrier, or
// finishes is demoted to the pending queue and the next pending warp is
// promoted. Groups of warps therefore drift apart in progress and reach
// long-latency instructions at different times — but, as the paper
// argues, in a coarser and less targeted way than PRO.
type TL struct {
	engine.BasePolicy
	sm        *engine.SM
	setSize   int
	active    [][]*engine.Warp // per slot, round-robin order
	pending   [][]*engine.Warp // per slot, FIFO
	lastIssue []int            // per slot: index into active of last issue
	// blocked tracks warps known (from events) to be barrier-blocked;
	// refill must not promote them or they would wedge an active slot.
	blocked map[*engine.Warp]bool
	// gens are the per-slot order generations: every event hook mutates
	// the active sets or cursors, so each bumps them all. The cache
	// mainly wins on stalled stretches between events.
	gens []uint64
}

// NewTL is an engine.Factory with the default active-set size.
func NewTL(sm *engine.SM) engine.Scheduler { return NewTLWithSize(DefaultActiveSet)(sm) }

// NewTLWithSize returns a factory for a two-level scheduler with the
// given per-slot active-set size.
func NewTLWithSize(size int) engine.Factory {
	if size < 1 {
		size = 1
	}
	return func(sm *engine.SM) engine.Scheduler {
		n := sm.Cfg.SchedulersPerSM
		return &TL{
			sm:        sm,
			setSize:   size,
			active:    make([][]*engine.Warp, n),
			pending:   make([][]*engine.Warp, n),
			lastIssue: make([]int, n),
			blocked:   make(map[*engine.Warp]bool),
			gens:      make([]uint64, n),
		}
	}
}

// Name implements engine.Scheduler.
func (s *TL) Name() string { return "TL" }

// OrderGen implements engine.OrderCacher.
func (s *TL) OrderGen(slot int, _ int64) uint64 { return s.gens[slot] }

// bumpAll invalidates every slot's cached order.
func (s *TL) bumpAll() {
	for i := range s.gens {
		s.gens[i]++
	}
}

// Order implements engine.Scheduler: only the active set is exposed,
// round-robin from just after the last issued position. Liveness: every
// event that can block an active warp indefinitely (long-latency issue,
// barrier, finish) demotes it and promotes a pending warp, so pending
// warps always surface.
func (s *TL) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	act := s.active[slot]
	n := len(act)
	if n == 0 {
		return dst
	}
	start := (s.lastIssue[slot] + 1) % n
	for i := 0; i < n; i++ {
		dst = append(dst, act[(start+i)%n])
	}
	return dst
}

// OnIssue implements engine.Scheduler: update the round-robin cursor and
// demote the warp on long-latency instructions.
func (s *TL) OnIssue(w *engine.Warp, in *isa.Instr, _ int, _ int64) {
	s.bumpAll()
	slot := w.SchedSlot
	for i, a := range s.active[slot] {
		if a == w {
			s.lastIssue[slot] = i
			break
		}
	}
	if in.Op.IsGlobalMem() {
		s.demote(w)
	}
}

// OnTBAssign implements engine.Scheduler: new warps queue as pending and
// fill free active slots.
func (s *TL) OnTBAssign(tb *engine.ThreadBlock, _ int64) {
	s.bumpAll()
	for _, w := range tb.Warps {
		s.pending[w.SchedSlot] = append(s.pending[w.SchedSlot], w)
	}
	for slot := range s.active {
		s.refill(slot)
	}
}

// OnTBRetire implements engine.Scheduler.
func (s *TL) OnTBRetire(tb *engine.ThreadBlock, _ int64) {
	s.bumpAll()
	for _, w := range tb.Warps {
		delete(s.blocked, w)
	}
	for slot := range s.active {
		s.active[slot] = removeTB(s.active[slot], tb)
		s.pending[slot] = removeTB(s.pending[slot], tb)
		s.refill(slot)
	}
}

// OnBarrierArrive implements engine.Scheduler: a warp waiting for its
// siblings leaves the active set so others can run.
func (s *TL) OnBarrierArrive(w *engine.Warp, _ int64) {
	s.bumpAll()
	s.blocked[w] = true
	s.demote(w)
}

// OnBarrierRelease implements engine.Scheduler: released warps are
// eligible again, so refill the active sets (they may have been left
// underfull while every pending warp was blocked).
func (s *TL) OnBarrierRelease(tb *engine.ThreadBlock, _ int64) {
	s.bumpAll()
	for _, w := range tb.Warps {
		delete(s.blocked, w)
	}
	for slot := range s.active {
		s.refill(slot)
	}
}

// OnWarpFinish implements engine.Scheduler: finished warps leave both
// structures.
func (s *TL) OnWarpFinish(w *engine.Warp, _ int64) {
	s.bumpAll()
	delete(s.blocked, w)
	slot := w.SchedSlot
	s.active[slot] = removeWarp(s.active[slot], w)
	s.pending[slot] = removeWarp(s.pending[slot], w)
	s.refill(slot)
}

// demote moves w from active to the pending tail and promotes a
// replacement.
func (s *TL) demote(w *engine.Warp) {
	slot := w.SchedSlot
	before := len(s.active[slot])
	s.active[slot] = removeWarp(s.active[slot], w)
	if len(s.active[slot]) != before {
		s.pending[slot] = append(s.pending[slot], w)
	}
	s.refill(slot)
}

// refill promotes pending warps into free active slots, oldest first,
// skipping warps known to be blocked (barrier) or finished — promoting a
// barrier-blocked warp would wedge an active slot until its siblings,
// possibly stuck in pending, release it.
func (s *TL) refill(slot int) {
	for len(s.active[slot]) < s.setSize {
		pick := -1
		for i, w := range s.pending[slot] {
			if !s.blocked[w] && !w.Finished() {
				pick = i
				break
			}
		}
		if pick < 0 {
			break
		}
		w := s.pending[slot][pick]
		s.pending[slot] = append(s.pending[slot][:pick], s.pending[slot][pick+1:]...)
		s.active[slot] = append(s.active[slot], w)
	}
	if s.lastIssue[slot] >= len(s.active[slot]) {
		s.lastIssue[slot] = 0
	}
}

func removeWarp(list []*engine.Warp, w *engine.Warp) []*engine.Warp {
	for i, x := range list {
		if x == w {
			return append(list[:i], list[i+1:]...)
		}
	}
	return list
}

func removeTB(list []*engine.Warp, tb *engine.ThreadBlock) []*engine.Warp {
	kept := list[:0]
	for _, w := range list {
		if w.TB != tb {
			kept = append(kept, w)
		}
	}
	return kept
}
