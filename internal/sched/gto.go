package sched

import (
	"repro/internal/engine"
	"repro/internal/isa"
)

// GTO is Greedy-Then-Oldest: each scheduler slot keeps issuing from the
// same warp until it stalls, then falls back to the oldest warp (by TB
// assignment time, then warp slot). The greedy warp races ahead, which
// spreads progress unevenly and hides long latencies — the strongest of
// the paper's three baselines.
type GTO struct {
	engine.BasePolicy
	sm     *engine.SM
	greedy []*engine.Warp   // per slot
	aged   [][]*engine.Warp // per slot, oldest first
	gens   []uint64         // per slot: order generation
}

// NewGTO is an engine.Factory.
func NewGTO(sm *engine.SM) engine.Scheduler {
	return &GTO{
		sm:     sm,
		greedy: make([]*engine.Warp, sm.Cfg.SchedulersPerSM),
		aged:   make([][]*engine.Warp, sm.Cfg.SchedulersPerSM),
		gens:   make([]uint64, sm.Cfg.SchedulersPerSM),
	}
}

// Name implements engine.Scheduler.
func (s *GTO) Name() string { return "GTO" }

// OrderGen implements engine.OrderCacher: the order changes only when the
// slot's greedy warp moves or its age list changes membership.
func (s *GTO) OrderGen(slot int, _ int64) uint64 { return s.gens[slot] }

// bumpAll invalidates every slot's cached order.
func (s *GTO) bumpAll() {
	for i := range s.gens {
		s.gens[i]++
	}
}

// Order implements engine.Scheduler: greedy warp first, then all warps
// oldest-first.
func (s *GTO) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	if g := s.greedy[slot]; g != nil && !g.Finished() {
		dst = append(dst, g)
	}
	for _, w := range s.aged[slot] {
		if w != s.greedy[slot] {
			dst = append(dst, w)
		}
	}
	return dst
}

// OnIssue implements engine.Scheduler: the issuing warp becomes greedy.
func (s *GTO) OnIssue(w *engine.Warp, _ *isa.Instr, _ int, _ int64) {
	if s.greedy[w.SchedSlot] != w {
		s.greedy[w.SchedSlot] = w
		s.gens[w.SchedSlot]++
	}
}

// OnWarpFinish implements engine.Scheduler: a finished greedy warp drops
// out of the order's head.
func (s *GTO) OnWarpFinish(w *engine.Warp, _ int64) {
	if s.greedy[w.SchedSlot] == w {
		s.gens[w.SchedSlot]++
	}
}

// OnTBAssign implements engine.Scheduler: new warps join their slot's age
// list (they are the youngest; a stable sort keeps earlier TBs first).
func (s *GTO) OnTBAssign(tb *engine.ThreadBlock, _ int64) {
	s.bumpAll()
	for _, w := range tb.Warps {
		s.aged[w.SchedSlot] = append(s.aged[w.SchedSlot], w)
	}
	for slot := range s.aged {
		list := s.aged[slot]
		// Insertion sort by (SpawnCycle, Slot). The list is already
		// sorted except for the warps just appended, and unlike
		// sort.SliceStable this allocates nothing — OnTBAssign is on the
		// TB launch path, which must stay allocation-free under TB churn.
		// (Slot is unique within a list, so the key is a total order and
		// the result matches the stable sort it replaces.)
		for i := 1; i < len(list); i++ {
			w := list[i]
			j := i - 1
			for ; j >= 0; j-- {
				p := list[j]
				if p.SpawnCycle < w.SpawnCycle ||
					(p.SpawnCycle == w.SpawnCycle && p.Slot < w.Slot) {
					break
				}
				list[j+1] = p
			}
			list[j+1] = w
		}
	}
}

// OnTBRetire implements engine.Scheduler: drop the TB's warps.
func (s *GTO) OnTBRetire(tb *engine.ThreadBlock, _ int64) {
	s.bumpAll()
	for slot := range s.aged {
		kept := s.aged[slot][:0]
		for _, w := range s.aged[slot] {
			if w.TB != tb {
				kept = append(kept, w)
			}
		}
		s.aged[slot] = kept
		if g := s.greedy[slot]; g != nil && g.TB == tb {
			s.greedy[slot] = nil
		}
	}
}
