package sched

import (
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/isa"
	"repro/internal/memsys"
	"repro/internal/timing"
)

func testSM(t *testing.T, factory engine.Factory, blockThreads int) *engine.SM {
	t.Helper()
	b := isa.NewBuilder("sched-test")
	b.LdGlobal(1, isa.MemSpec{Pattern: isa.PatCoalesced})
	b.Bar()
	b.IAdd(2, 1, 1)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := config.GTX480()
	wheel := timing.NewWheel()
	mem := memsys.New(cfg, wheel)
	launch := &engine.Launch{Program: prog, GridTBs: 32, BlockThreads: blockThreads, Seed: 1}
	if err := launch.Validate(cfg); err != nil {
		t.Fatal(err)
	}
	return engine.NewSM(0, cfg, wheel, mem, launch, factory)
}

func globalLoad() *isa.Instr {
	return &isa.Instr{Op: isa.OpLdGlobal, Dst: 1, Mem: &isa.MemSpec{Pattern: isa.PatCoalesced}}
}

func aluInstr() *isa.Instr {
	return &isa.Instr{Op: isa.OpIAdd, Dst: 2}
}

// --- LRR ---

func TestLRROrderRotatesAfterIssue(t *testing.T) {
	sm := testSM(t, NewLRR, 256) // 8 warps; slot 0 owns 0,2,4,6
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*LRR)
	o1 := s.Order(0, nil, 2)
	if o1[0] != tb.Warps[1*0] { // first in slot order after initial pointer 0 is warp slot 1? slot0 owns even slots; pointer 0 → start at 1 → first even is 2
		_ = o1
	}
	// Issue from the first ordered warp and check rotation.
	first := o1[0]
	s.OnIssue(first, aluInstr(), 32, 2)
	o2 := s.Order(0, nil, 3)
	if o2[0] == first {
		t.Fatal("LRR did not rotate past the issued warp")
	}
	if o2[len(o2)-1] != first {
		t.Fatal("issued warp should now be last")
	}
}

func TestLRROrderContainsExactlySlotWarps(t *testing.T) {
	sm := testSM(t, NewLRR, 256)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*LRR)
	for slot := 0; slot < 2; slot++ {
		order := s.Order(slot, nil, 2)
		want := 0
		for _, w := range tb.Warps {
			if w.SchedSlot == slot {
				want++
			}
		}
		if len(order) != want {
			t.Fatalf("slot %d order has %d warps, want %d", slot, len(order), want)
		}
		for _, w := range order {
			if w.SchedSlot != slot {
				t.Fatal("foreign warp in order")
			}
		}
	}
}

// --- GTO ---

func TestGTOGreedyFirstThenOldest(t *testing.T) {
	sm := testSM(t, NewGTO, 256)
	tb0 := sm.AssignTB(0, 1)
	s := sm.Sched.(*GTO)
	// Age: make a second TB assigned later.
	sm.Wheel.Advance(5)
	tb1 := sm.AssignTB(1, 5)

	// No greedy yet: order is oldest first (tb0's warps precede tb1's).
	o := s.Order(0, nil, 6)
	if o[0].TB != tb0 {
		t.Fatal("oldest warp not first before any issue")
	}
	// Issue from a tb1 warp: it becomes greedy and must lead.
	var w1 *engine.Warp
	for _, w := range tb1.Warps {
		if w.SchedSlot == 0 {
			w1 = w
			break
		}
	}
	s.OnIssue(w1, aluInstr(), 32, 6)
	o = s.Order(0, nil, 7)
	if o[0] != w1 {
		t.Fatal("greedy warp not first")
	}
	if o[1].TB != tb0 {
		t.Fatal("oldest-first violated after greedy")
	}
	// Greedy warp appears exactly once.
	count := 0
	for _, w := range o {
		if w == w1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("greedy warp appears %d times", count)
	}
}

func TestGTORetireDropsWarpsAndGreedy(t *testing.T) {
	sm := testSM(t, NewGTO, 256)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*GTO)
	var w *engine.Warp
	for _, x := range tb.Warps {
		if x.SchedSlot == 0 {
			w = x
			break
		}
	}
	s.OnIssue(w, aluInstr(), 32, 2)
	s.OnTBRetire(tb, 3)
	if got := s.Order(0, nil, 4); len(got) != 0 {
		t.Fatalf("order after retire has %d warps", len(got))
	}
}

// --- TL ---

func TestTLActiveSetBounded(t *testing.T) {
	sm := testSM(t, NewTLWithSize(4), 1536) // 48 warps → 24 per slot
	sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	o := s.Order(0, nil, 2)
	if len(o) != 4 {
		t.Fatalf("active set exposes %d warps, want 4", len(o))
	}
}

func TestTLDemotesOnGlobalLoadIssue(t *testing.T) {
	sm := testSM(t, NewTLWithSize(4), 1536)
	sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	o := s.Order(0, nil, 2)
	victim := o[0]
	s.OnIssue(victim, globalLoad(), 32, 2)
	o2 := s.Order(0, nil, 3)
	for _, w := range o2 {
		if w == victim {
			t.Fatal("warp not demoted after long-latency issue")
		}
	}
	if len(o2) != 4 {
		t.Fatalf("active set not refilled: %d warps", len(o2))
	}
}

func TestTLDoesNotDemoteOnALUIssue(t *testing.T) {
	sm := testSM(t, NewTLWithSize(4), 1536)
	sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	o := s.Order(0, nil, 2)
	w := o[0]
	s.OnIssue(w, aluInstr(), 32, 2)
	found := false
	for _, x := range s.Order(0, nil, 3) {
		if x == w {
			found = true
		}
	}
	if !found {
		t.Fatal("ALU issue demoted the warp")
	}
}

func TestTLEveryWarpEventuallyExposed(t *testing.T) {
	// Repeatedly demote the head: all 24 slot-0 warps must cycle through
	// the active set (liveness).
	sm := testSM(t, NewTLWithSize(4), 1536)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	seen := map[*engine.Warp]bool{}
	for i := 0; i < 200; i++ {
		o := s.Order(0, nil, int64(i+2))
		if len(o) == 0 {
			t.Fatal("active set drained")
		}
		seen[o[0]] = true
		s.OnIssue(o[0], globalLoad(), 32, int64(i+2))
	}
	want := 0
	for _, w := range tb.Warps {
		if w.SchedSlot == 0 {
			want++
		}
	}
	if len(seen) != want {
		t.Fatalf("only %d of %d warps ever surfaced", len(seen), want)
	}
}

func TestTLBarrierDemotionAndRelease(t *testing.T) {
	sm := testSM(t, NewTLWithSize(4), 1536)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	o := s.Order(0, nil, 2)
	w := o[0]
	w.TB.WarpsAtBarrier++ // engine would do this before the hook
	s.OnBarrierArrive(w, 2)
	for _, x := range s.Order(0, nil, 3) {
		if x == w {
			t.Fatal("barrier-blocked warp stayed active")
		}
	}
	// Refill must never promote blocked warps: block everything.
	for _, x := range tb.Warps {
		if x.SchedSlot != 0 || x == w {
			continue
		}
		tb.WarpsAtBarrier++
		s.OnBarrierArrive(x, 3)
	}
	if got := s.Order(0, nil, 4); len(got) != 0 {
		t.Fatalf("active set holds %d blocked warps", len(got))
	}
	tb.WarpsAtBarrier = 0
	s.OnBarrierRelease(tb, 5)
	if got := s.Order(0, nil, 6); len(got) != 4 {
		t.Fatalf("release refilled %d warps, want 4", len(got))
	}
}

func TestTLFinishRemovesWarp(t *testing.T) {
	sm := testSM(t, NewTLWithSize(4), 256)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*TL)
	var w *engine.Warp
	for _, x := range tb.Warps {
		if x.SchedSlot == 0 {
			w = x
			break
		}
	}
	s.OnWarpFinish(w, 2)
	for _, x := range s.Order(0, nil, 3) {
		if x == w {
			t.Fatal("finished warp still exposed")
		}
	}
}

// --- CAWS-lite / OWL-lite ---

func TestCAWSLiteOrdersByLeastProgress(t *testing.T) {
	sm := testSM(t, NewCAWSLite, 256)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*CAWSLite)
	var slot0 []*engine.Warp
	for _, w := range tb.Warps {
		if w.SchedSlot == 0 {
			slot0 = append(slot0, w)
		}
	}
	for i, w := range slot0 {
		w.Progress = int64(100 * (i + 1)) // 100, 200, 300, ...
	}
	slot0[1].Progress = 10 // the critical warp
	o := s.Order(0, nil, 2)
	if o[0] != slot0[1] {
		t.Fatal("CAWS did not prioritize the least-progressed (critical) warp")
	}
	for i := 1; i < len(o); i++ {
		if o[i].Progress < o[i-1].Progress {
			t.Fatal("CAWS order not ascending by progress")
		}
	}
}

func TestOWLLitePrioritizesOldestCTAs(t *testing.T) {
	sm := testSM(t, NewOWLLite, 256)
	tb0 := sm.AssignTB(0, 1)
	tb1 := sm.AssignTB(1, 2)
	tb2 := sm.AssignTB(2, 3)
	s := sm.Sched.(*OWLLite)
	o := s.Order(0, nil, 4)
	// Oldest group (tb0, tb1) warps first; tb2 last.
	seenTB2At := -1
	lastTB01 := -1
	for i, w := range o {
		switch w.TB {
		case tb2:
			if seenTB2At < 0 {
				seenTB2At = i
			}
		case tb0, tb1:
			lastTB01 = i
		}
	}
	if seenTB2At >= 0 && lastTB01 > seenTB2At {
		t.Fatal("OWL-lite interleaved a young CTA before the priority group finished")
	}
}

func TestOWLLiteRotatesWithinGroup(t *testing.T) {
	sm := testSM(t, NewOWLLite, 256)
	tb := sm.AssignTB(0, 1)
	s := sm.Sched.(*OWLLite)
	o1 := s.Order(0, nil, 2)
	first := o1[0]
	s.OnIssue(first, aluInstr(), 32, 2)
	o2 := s.Order(0, nil, 3)
	if o2[0] == first {
		t.Fatal("OWL-lite did not rotate after issue within the priority group")
	}
	_ = tb
}

func TestNames(t *testing.T) {
	sm := testSM(t, NewLRR, 256)
	if sm.Sched.Name() != "LRR" {
		t.Fatal("LRR name")
	}
	if testSM(t, NewGTO, 256).Sched.Name() != "GTO" {
		t.Fatal("GTO name")
	}
	if testSM(t, NewTL, 256).Sched.Name() != "TL" {
		t.Fatal("TL name")
	}
}
