// Package sched implements the baseline warp-scheduling policies the
// paper compares against: Loose Round Robin (LRR), Greedy-Then-Oldest
// (GTO) and the Two-Level scheduler (TL) of Narasiman et al.
// (MICRO-2011), as configured in GPGPU-Sim 3.2.2.
package sched

import (
	"repro/internal/engine"
	"repro/internal/isa"
)

// LRR is Loose Round Robin: every warp has equal priority and each
// scheduler slot resumes its scan just after the warp it issued last, so
// all warps make roughly equal progress — the behaviour whose batching
// pathologies (Sec. II of the paper) PRO attacks.
type LRR struct {
	engine.BasePolicy
	sm   *engine.SM
	last []int // per slot: warp-slot index of the last issued warp
}

// NewLRR is an engine.Factory.
func NewLRR(sm *engine.SM) engine.Scheduler {
	return &LRR{sm: sm, last: make([]int, sm.Cfg.SchedulersPerSM)}
}

// Name implements engine.Scheduler.
func (s *LRR) Name() string { return "LRR" }

// Order implements engine.Scheduler: all live warps of slot, starting
// just after the last issued warp's slot.
func (s *LRR) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	slots := s.sm.WarpSlots
	n := len(slots)
	if n == 0 {
		return dst
	}
	start := (s.last[slot] + 1) % n
	for i := 0; i < n; i++ {
		w := slots[(start+i)%n]
		if w != nil && w.SchedSlot == slot {
			dst = append(dst, w)
		}
	}
	return dst
}

// OnIssue implements engine.Scheduler.
func (s *LRR) OnIssue(w *engine.Warp, _ *isa.Instr, _ int, _ int64) {
	s.last[w.SchedSlot] = w.Slot
}
