// Package sched implements the baseline warp-scheduling policies the
// paper compares against: Loose Round Robin (LRR), Greedy-Then-Oldest
// (GTO) and the Two-Level scheduler (TL) of Narasiman et al.
// (MICRO-2011), as configured in GPGPU-Sim 3.2.2.
package sched

import (
	"repro/internal/engine"
	"repro/internal/isa"
)

// LRR is Loose Round Robin: every warp has equal priority and each
// scheduler slot resumes its scan just after the warp it issued last, so
// all warps make roughly equal progress — the behaviour whose batching
// pathologies (Sec. II of the paper) PRO attacks.
type LRR struct {
	engine.BasePolicy
	sm   *engine.SM
	last []int    // per slot: warp-slot index of the last issued warp
	gens []uint64 // per slot: order generation
}

// NewLRR is an engine.Factory.
func NewLRR(sm *engine.SM) engine.Scheduler {
	return &LRR{
		sm:   sm,
		last: make([]int, sm.Cfg.SchedulersPerSM),
		gens: make([]uint64, sm.Cfg.SchedulersPerSM),
	}
}

// Name implements engine.Scheduler.
func (s *LRR) Name() string { return "LRR" }

// OrderGen implements engine.OrderCacher: the order changes when a slot's
// round-robin cursor moves or the SM's warp-slot population changes.
func (s *LRR) OrderGen(slot int, _ int64) uint64 { return s.gens[slot] }

// Order implements engine.Scheduler: all live warps of slot, starting
// just after the last issued warp's slot. The rotated scan runs on the
// SM's packed live-warp bitmask (64 slots per word) via ScanLive.
func (s *LRR) Order(slot int, dst []*engine.Warp, _ int64) []*engine.Warp {
	n := len(s.sm.WarpSlots)
	if n == 0 {
		return dst
	}
	return s.sm.ScanLive(slot, (s.last[slot]+1)%n, dst)
}

// OnIssue implements engine.Scheduler.
func (s *LRR) OnIssue(w *engine.Warp, _ *isa.Instr, _ int, _ int64) {
	if s.last[w.SchedSlot] != w.Slot {
		s.last[w.SchedSlot] = w.Slot
		s.gens[w.SchedSlot]++
	}
}

// OnTBAssign implements engine.Scheduler: Order reads sm.WarpSlots live,
// so a residency change invalidates every slot's cached order.
func (s *LRR) OnTBAssign(*engine.ThreadBlock, int64) {
	for i := range s.gens {
		s.gens[i]++
	}
}

// OnTBRetire implements engine.Scheduler.
func (s *LRR) OnTBRetire(*engine.ThreadBlock, int64) {
	for i := range s.gens {
		s.gens[i]++
	}
}
